"""Greedy heuristic over *grouped selection problems*.

The MQO ILP of the paper has a very regular structure: for every (query,
starting relation) pair exactly one candidate probe order must be chosen
("groups"); each candidate implies a set of shared, positively priced
*steps*; candidates may commit stores to partitioning attributes; and
candidates that probe a materialized intermediate result activate further
groups (the MIR's maintenance probe orders).

This module captures that structure explicitly and solves it greedily:
repeatedly pick, over all pending unsatisfied groups, the compatible
candidate with the smallest *marginal* step cost.  The result is a feasible
(not necessarily optimal) selection used (a) as a warm start for
branch-and-bound and (b) as a comparison point in the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

__all__ = ["GroupedCandidate", "GroupedProblem", "GreedySolution", "solve_greedy"]


@dataclass(frozen=True)
class GroupedCandidate:
    """One selectable alternative within a group.

    Attributes
    ----------
    name:
        Unique candidate identifier (matches the ILP ``x`` variable name).
    group:
        Key of the group this candidate belongs to.
    steps:
        Keys of the shared steps this candidate requires (ILP ``y`` vars).
    commitments:
        ``(store_key, attribute)`` pairs this candidate forces; two selected
        candidates must never commit the same store to different attributes.
    activates:
        Group keys that become mandatory when this candidate is selected
        (MIR maintenance groups).
    """

    name: str
    group: str
    steps: Tuple[str, ...]
    commitments: Tuple[Tuple[str, str], ...] = ()
    activates: Tuple[str, ...] = ()


@dataclass
class GroupedProblem:
    """A choose-one-per-group problem with shared step costs."""

    step_costs: Dict[str, float]
    candidates: Dict[str, GroupedCandidate]
    groups: Dict[str, List[str]]  # group key -> candidate names
    mandatory: Tuple[str, ...]  # groups that must always be satisfied

    def validate(self) -> None:
        """Raise ``ValueError`` on dangling references (used by tests)."""
        for name, cand in self.candidates.items():
            if cand.group not in self.groups:
                raise ValueError(f"candidate {name} references unknown group {cand.group}")
            for step in cand.steps:
                if step not in self.step_costs:
                    raise ValueError(f"candidate {name} references unknown step {step}")
            for activated in cand.activates:
                if activated not in self.groups:
                    raise ValueError(f"candidate {name} activates unknown group {activated}")
        for group, names in self.groups.items():
            for name in names:
                if name not in self.candidates:
                    raise ValueError(f"group {group} references unknown candidate {name}")
        for group in self.mandatory:
            if group not in self.groups:
                raise ValueError(f"mandatory group {group} is unknown")


@dataclass
class GreedySolution:
    """Feasible selection produced by :func:`solve_greedy`."""

    chosen: Set[str] = field(default_factory=set)
    steps: Set[str] = field(default_factory=set)
    partitioning: Dict[str, str] = field(default_factory=dict)
    satisfied_groups: Set[str] = field(default_factory=set)
    objective: float = 0.0


def solve_greedy(
    problem: GroupedProblem, improvement_rounds: int = 10
) -> Optional[GreedySolution]:
    """Greedy marginal-cost selection plus local-improvement passes.

    Construction is *globally* marginal: at each round every pending group's
    compatible candidates are scored by the cost of their not-yet-selected
    steps, and the overall cheapest (group, candidate) pair is taken.  The
    improvement phase then repeatedly re-evaluates each group's choice given
    all others fixed, which captures the paper's Sec. V.2 effect where a
    locally suboptimal probe order becomes globally attractive once another
    query already pays for the shared prefix.
    """
    choice = _construct(problem)
    if choice is None:
        return None
    choice = _improve(problem, choice, improvement_rounds)
    return _materialize(problem, choice)


def _construct(problem: GroupedProblem) -> Optional[Dict[str, str]]:
    """Greedy construction; returns ``group -> candidate name`` or ``None``."""
    choice: Dict[str, str] = {}
    steps: Set[str] = set()
    partitioning: Dict[str, str] = {}
    pending_set: Set[str] = set(problem.mandatory)

    while pending_set:
        best: Optional[Tuple[float, str, GroupedCandidate]] = None
        for group in sorted(pending_set):
            for cand_name in problem.groups[group]:
                cand = problem.candidates[cand_name]
                if not _compatible(cand, partitioning):
                    continue
                marginal = sum(
                    problem.step_costs[s] for s in cand.steps if s not in steps
                )
                key = (marginal, cand.name, cand)
                if best is None or key[:2] < best[:2]:
                    best = key
        if best is None:
            return None  # no compatible candidate for any pending group

        _, __, cand = best
        choice[cand.group] = cand.name
        pending_set.discard(cand.group)
        for store, attr in cand.commitments:
            partitioning[store] = attr
        steps.update(cand.steps)
        for activated in cand.activates:
            if activated not in choice:
                pending_set.add(activated)
    return choice


def _needed_groups(problem: GroupedProblem, choice: Mapping[str, str]) -> Set[str]:
    """Closure of mandatory groups under the activations of chosen candidates."""
    needed: Set[str] = set()
    frontier = list(problem.mandatory)
    while frontier:
        group = frontier.pop()
        if group in needed:
            continue
        needed.add(group)
        cand_name = choice.get(group)
        if cand_name is not None:
            frontier.extend(problem.candidates[cand_name].activates)
    return needed


def _evaluate(
    problem: GroupedProblem, choice: Mapping[str, str]
) -> Optional[Tuple[float, Set[str], Dict[str, str]]]:
    """Cost of a choice map, or ``None`` if infeasible/incomplete."""
    needed = _needed_groups(problem, choice)
    partitioning: Dict[str, str] = {}
    steps: Set[str] = set()
    for group in needed:
        cand_name = choice.get(group)
        if cand_name is None:
            return None
        cand = problem.candidates[cand_name]
        if not _compatible(cand, partitioning):
            return None
        for store, attr in cand.commitments:
            partitioning[store] = attr
        steps.update(cand.steps)
    cost = sum(problem.step_costs[s] for s in steps)
    return cost, needed, partitioning


def _improve(
    problem: GroupedProblem, choice: Dict[str, str], rounds: int
) -> Dict[str, str]:
    """One-group-at-a-time replacement until no improvement is found."""
    current = _evaluate(problem, choice)
    assert current is not None, "construction must yield a feasible choice"
    best_cost = current[0]

    for _ in range(rounds):
        improved = False
        for group in sorted(_needed_groups(problem, choice)):
            for cand_name in problem.groups[group]:
                if choice.get(group) == cand_name:
                    continue
                trial = dict(choice)
                trial[group] = cand_name
                # Newly activated groups may lack a choice yet: default them
                # to their cheapest standalone candidate.
                for activated in problem.candidates[cand_name].activates:
                    _default_choice(problem, trial, activated)
                outcome = _evaluate(problem, trial)
                if outcome is not None and outcome[0] < best_cost - 1e-12:
                    choice, best_cost, improved = trial, outcome[0], True
        if not improved:
            break
    return choice


def _default_choice(problem: GroupedProblem, choice: Dict[str, str], group: str) -> None:
    if group in choice or not problem.groups.get(group):
        return
    cheapest = min(
        problem.groups[group],
        key=lambda name: sum(
            problem.step_costs[s] for s in problem.candidates[name].steps
        ),
    )
    choice[group] = cheapest
    for activated in problem.candidates[cheapest].activates:
        _default_choice(problem, choice, activated)


def _materialize(problem: GroupedProblem, choice: Dict[str, str]) -> GreedySolution:
    outcome = _evaluate(problem, choice)
    assert outcome is not None
    cost, needed, partitioning = outcome
    solution = GreedySolution(
        chosen={choice[g] for g in needed},
        satisfied_groups=needed,
        partitioning=partitioning,
        objective=cost,
    )
    solution.steps = {
        step for name in solution.chosen for step in problem.candidates[name].steps
    }
    return solution


def _compatible(candidate: GroupedCandidate, committed: Mapping[str, str]) -> bool:
    return all(
        committed.get(store, attr) == attr for store, attr in candidate.commitments
    )


def selection_objective(problem: GroupedProblem, chosen: Sequence[str]) -> float:
    """Objective of an arbitrary candidate selection (union of step costs)."""
    steps: FrozenSet[str] = frozenset(
        step for name in chosen for step in problem.candidates[name].steps
    )
    return sum(problem.step_costs[s] for s in steps)
