"""Branch-and-bound solver for 0/1 and general integer linear programs.

Solves the LP relaxation with the in-house simplex (:mod:`repro.ilp.simplex`),
then branches on the most fractional integer variable.  Nodes are explored
best-first on their relaxation bound, so the first integral node popped with
bound >= incumbent proves optimality.

A warm-start incumbent (e.g. from :mod:`repro.ilp.greedy`) prunes early; an
LP-rounding heuristic is additionally tried at every node.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from .model import Model, Solution, SolveStatus, Variable
from .simplex import LpResult, solve_lp

__all__ = ["BranchAndBoundSolver", "BnbStats"]

_INT_TOL = 1e-6


@dataclass
class BnbStats:
    nodes_explored: int = 0
    nodes_pruned: int = 0
    lp_solves: int = 0
    wall_time: float = 0.0


class BranchAndBoundSolver:
    """Exact 0/1 (and bounded-integer) ILP solver.

    Parameters
    ----------
    node_limit:
        Maximum branch-and-bound nodes; if exceeded the best incumbent is
        returned with status ``FEASIBLE`` (or ``ERROR`` if none found).
    time_limit:
        Wall-clock budget in seconds (same fallback behaviour).
    """

    def __init__(
        self,
        node_limit: int = 200_000,
        time_limit: Optional[float] = None,
        integrality_tol: float = _INT_TOL,
    ) -> None:
        self.node_limit = node_limit
        self.time_limit = time_limit
        self.integrality_tol = integrality_tol

    def solve(
        self,
        model: Model,
        warm_start: Optional[Mapping[Variable, float]] = None,
    ) -> Solution:
        start = time.perf_counter()
        stats = BnbStats()

        c, a_ub, b_ub, a_eq, b_eq, lb, ub = model.to_matrices()
        int_indices = np.array(
            [v.index for v in model.integer_variables()], dtype=int
        )

        incumbent_x: Optional[np.ndarray] = None
        incumbent_obj = np.inf
        if warm_start is not None and model.is_feasible(warm_start):
            incumbent_x = np.zeros(model.num_vars)
            for var, val in warm_start.items():
                incumbent_x[var.index] = val
            incumbent_obj = float(c @ incumbent_x)

        # Node = (bound, tiebreak, node_lb, node_ub). Best-first on bound.
        counter = itertools.count()
        root = self._solve_relaxation(c, a_ub, b_ub, a_eq, b_eq, lb, ub, stats)
        if root.status == "infeasible":
            stats.wall_time = time.perf_counter() - start
            return Solution(status=SolveStatus.INFEASIBLE, info=self._info(stats))
        if root.status == "unbounded":
            stats.wall_time = time.perf_counter() - start
            return Solution(status=SolveStatus.UNBOUNDED, info=self._info(stats))

        heap = [(root.objective, next(counter), lb, ub, root)]
        proven_optimal = True

        while heap:
            if stats.nodes_explored >= self.node_limit or (
                self.time_limit is not None
                and time.perf_counter() - start > self.time_limit
            ):
                proven_optimal = False
                break

            bound, _, node_lb, node_ub, relax = heapq.heappop(heap)
            if bound >= incumbent_obj - 1e-9:
                stats.nodes_pruned += 1
                continue
            stats.nodes_explored += 1

            assert relax.x is not None
            frac_idx = self._most_fractional(relax.x, int_indices)
            if frac_idx is None:
                # Integral relaxation: new incumbent.
                if relax.objective < incumbent_obj - 1e-9:
                    incumbent_obj = relax.objective
                    incumbent_x = self._snap(relax.x, int_indices)
                continue

            # Rounding heuristic: cheap shot at an incumbent for pruning.
            rounded = self._snap(relax.x, int_indices)
            if self._vector_feasible(model, rounded):
                obj = float(c @ rounded)
                if obj < incumbent_obj - 1e-9:
                    incumbent_obj, incumbent_x = obj, rounded

            value = relax.x[frac_idx]
            for branch in ("down", "up"):
                child_lb, child_ub = node_lb.copy(), node_ub.copy()
                if branch == "down":
                    child_ub[frac_idx] = np.floor(value)
                else:
                    child_lb[frac_idx] = np.ceil(value)
                if child_lb[frac_idx] > child_ub[frac_idx]:
                    continue
                child = self._solve_relaxation(
                    c, a_ub, b_ub, a_eq, b_eq, child_lb, child_ub, stats
                )
                if child.status != "optimal":
                    continue
                if child.objective >= incumbent_obj - 1e-9:
                    stats.nodes_pruned += 1
                    continue
                heapq.heappush(
                    heap, (child.objective, next(counter), child_lb, child_ub, child)
                )

        stats.wall_time = time.perf_counter() - start
        if incumbent_x is None:
            status = SolveStatus.INFEASIBLE if proven_optimal else SolveStatus.ERROR
            return Solution(status=status, info=self._info(stats))
        status = SolveStatus.OPTIMAL if proven_optimal else SolveStatus.FEASIBLE
        solution = model.solution_from_vector(incumbent_x, status, **self._info(stats))
        return solution

    # ------------------------------------------------------------------
    def _solve_relaxation(self, c, a_ub, b_ub, a_eq, b_eq, lb, ub, stats) -> LpResult:
        stats.lp_solves += 1
        return solve_lp(c, a_ub, b_ub, a_eq, b_eq, lb, ub)

    def _most_fractional(self, x: np.ndarray, int_indices: np.ndarray) -> Optional[int]:
        if int_indices.size == 0:
            return None
        vals = x[int_indices]
        frac = np.abs(vals - np.round(vals))
        worst = int(np.argmax(frac))
        if frac[worst] <= self.integrality_tol:
            return None
        return int(int_indices[worst])

    def _snap(self, x: np.ndarray, int_indices: np.ndarray) -> np.ndarray:
        out = x.copy()
        out[int_indices] = np.round(out[int_indices])
        return out

    @staticmethod
    def _vector_feasible(model: Model, x: np.ndarray) -> bool:
        assignment: Dict[Variable, float] = {
            var: float(x[var.index]) for var in model.variables
        }
        return model.is_feasible(assignment)

    @staticmethod
    def _info(stats: BnbStats) -> Dict[str, float]:
        return {
            "nodes_explored": float(stats.nodes_explored),
            "nodes_pruned": float(stats.nodes_pruned),
            "lp_solves": float(stats.lp_solves),
            "wall_time": stats.wall_time,
        }
