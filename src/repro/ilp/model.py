"""Integer linear program model objects.

The paper formulates multi-query probe-order selection as a 0/1 integer
linear program (Section V) and solves it with Gurobi.  Gurobi is not
available here, so this package provides a small, self-contained modeling
layer plus several solvers (own simplex-based branch-and-bound, a greedy
heuristic, and an optional ``scipy.optimize.milp`` backend used for
cross-validation).

The modeling layer is deliberately minimal: binary/integer/continuous
variables with bounds, linear constraints with senses ``<=``, ``>=``, ``==``,
and a linear objective that is always *minimized*.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

__all__ = [
    "VarType",
    "Sense",
    "Variable",
    "LinExpr",
    "Constraint",
    "Model",
    "Solution",
    "SolveStatus",
    "InfeasibleModelError",
]


class InfeasibleModelError(Exception):
    """Raised by solvers when the model provably has no feasible point."""


class VarType(enum.Enum):
    """Domain of a decision variable."""

    BINARY = "binary"
    INTEGER = "integer"
    CONTINUOUS = "continuous"


class Sense(enum.Enum):
    """Constraint sense; the left-hand side is always a :class:`LinExpr`."""

    LE = "<="
    GE = ">="
    EQ = "=="


class SolveStatus(enum.Enum):
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    FEASIBLE = "feasible"  # incumbent found, optimality not proven
    ERROR = "error"


@dataclass(frozen=True)
class Variable:
    """A decision variable.

    Variables are value objects owned by a :class:`Model`; identity is the
    model-assigned ``index``.  ``name`` exists for debugging and solution
    reporting and must be unique within a model.
    """

    name: str
    index: int
    vtype: VarType = VarType.BINARY
    lb: float = 0.0
    ub: float = 1.0

    def __mul__(self, coef: float) -> "LinExpr":
        return LinExpr({self: float(coef)})

    __rmul__ = __mul__

    def __add__(self, other) -> "LinExpr":
        return LinExpr({self: 1.0}) + other

    __radd__ = __add__

    def __sub__(self, other) -> "LinExpr":
        return LinExpr({self: 1.0}) - other

    def __neg__(self) -> "LinExpr":
        return LinExpr({self: -1.0})

    def __hash__(self) -> int:
        return self.index

    def __eq__(self, other) -> bool:  # type: ignore[override]
        return isinstance(other, Variable) and other.index == self.index


class LinExpr:
    """A linear expression ``sum(coef_i * var_i) + constant``."""

    __slots__ = ("terms", "constant")

    def __init__(
        self,
        terms: Optional[Mapping[Variable, float]] = None,
        constant: float = 0.0,
    ) -> None:
        self.terms: Dict[Variable, float] = dict(terms or {})
        self.constant = float(constant)

    @staticmethod
    def sum(items: Iterable) -> "LinExpr":
        """Sum variables and/or expressions into a single expression."""
        out = LinExpr()
        for item in items:
            out += item
        return out

    def copy(self) -> "LinExpr":
        return LinExpr(dict(self.terms), self.constant)

    def _add_term(self, var: Variable, coef: float) -> None:
        new = self.terms.get(var, 0.0) + coef
        if new == 0.0:
            self.terms.pop(var, None)
        else:
            self.terms[var] = new

    def __add__(self, other) -> "LinExpr":
        out = self.copy()
        if isinstance(other, LinExpr):
            for var, coef in other.terms.items():
                out._add_term(var, coef)
            out.constant += other.constant
        elif isinstance(other, Variable):
            out._add_term(other, 1.0)
        else:
            out.constant += float(other)
        return out

    __radd__ = __add__

    def __sub__(self, other) -> "LinExpr":
        if isinstance(other, LinExpr):
            return self + (other * -1.0)
        if isinstance(other, Variable):
            return self + LinExpr({other: -1.0})
        return self + (-float(other))

    def __mul__(self, coef: float) -> "LinExpr":
        coef = float(coef)
        return LinExpr(
            {var: c * coef for var, c in self.terms.items()},
            self.constant * coef,
        )

    __rmul__ = __mul__

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    def value(self, assignment: Mapping[Variable, float]) -> float:
        """Evaluate under a variable assignment (missing vars count as 0)."""
        total = self.constant
        for var, coef in self.terms.items():
            total += coef * assignment.get(var, 0.0)
        return total

    def __repr__(self) -> str:
        parts = [f"{coef:+g}*{var.name}" for var, coef in self.terms.items()]
        if self.constant:
            parts.append(f"{self.constant:+g}")
        return " ".join(parts) if parts else "0"


@dataclass
class Constraint:
    """``expr (<=|>=|==) rhs``; ``rhs`` is folded from the expr constant."""

    name: str
    expr: LinExpr
    sense: Sense
    rhs: float

    def satisfied(self, assignment: Mapping[Variable, float], tol: float = 1e-6) -> bool:
        lhs = self.expr.value(assignment)
        if self.sense is Sense.LE:
            return lhs <= self.rhs + tol
        if self.sense is Sense.GE:
            return lhs >= self.rhs - tol
        return abs(lhs - self.rhs) <= tol


@dataclass
class Solution:
    """Result of a solve: assignment, objective, and status."""

    status: SolveStatus
    objective: float = float("nan")
    values: Dict[Variable, float] = field(default_factory=dict)
    #: solver-specific diagnostics (node counts, iterations, wall time)
    info: Dict[str, float] = field(default_factory=dict)

    def value(self, var: Variable) -> float:
        return self.values.get(var, 0.0)

    def selected(self, tol: float = 0.5) -> List[Variable]:
        """Variables with value above ``tol`` (binary 'chosen' set)."""
        return [v for v, x in self.values.items() if x > tol]


class Model:
    """A minimization ILP: variables, linear constraints, linear objective."""

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self.variables: List[Variable] = []
        self.constraints: List[Constraint] = []
        self.objective: LinExpr = LinExpr()
        self._names: Dict[str, Variable] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_var(
        self,
        name: str,
        vtype: VarType = VarType.BINARY,
        lb: float = 0.0,
        ub: float = 1.0,
    ) -> Variable:
        """Create and register a variable; names must be unique."""
        if name in self._names:
            raise ValueError(f"duplicate variable name: {name!r}")
        if lb > ub:
            raise ValueError(f"variable {name!r} has lb {lb} > ub {ub}")
        var = Variable(name=name, index=len(self.variables), vtype=vtype, lb=lb, ub=ub)
        self.variables.append(var)
        self._names[name] = var
        return var

    def get_var(self, name: str) -> Variable:
        return self._names[name]

    def has_var(self, name: str) -> bool:
        return name in self._names

    def add_constraint(self, expr: LinExpr, sense: Sense, rhs: float, name: str = "") -> Constraint:
        """Add ``expr sense rhs``. The expression constant is folded into rhs."""
        if isinstance(expr, Variable):
            expr = LinExpr({expr: 1.0})
        folded_rhs = float(rhs) - expr.constant
        folded = LinExpr(dict(expr.terms), 0.0)
        con = Constraint(
            name=name or f"c{len(self.constraints)}",
            expr=folded,
            sense=sense,
            rhs=folded_rhs,
        )
        self.constraints.append(con)
        return con

    def add_le(self, expr: LinExpr, rhs: float, name: str = "") -> Constraint:
        return self.add_constraint(expr, Sense.LE, rhs, name)

    def add_ge(self, expr: LinExpr, rhs: float, name: str = "") -> Constraint:
        return self.add_constraint(expr, Sense.GE, rhs, name)

    def add_eq(self, expr: LinExpr, rhs: float, name: str = "") -> Constraint:
        return self.add_constraint(expr, Sense.EQ, rhs, name)

    def set_objective(self, expr: LinExpr) -> None:
        """Set the objective to *minimize* (constants are preserved)."""
        if isinstance(expr, Variable):
            expr = LinExpr({expr: 1.0})
        self.objective = expr.copy()

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def num_vars(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    def integer_variables(self) -> List[Variable]:
        return [v for v in self.variables if v.vtype is not VarType.CONTINUOUS]

    def is_feasible(self, assignment: Mapping[Variable, float], tol: float = 1e-6) -> bool:
        """Check bounds, integrality, and all constraints."""
        for var in self.variables:
            x = assignment.get(var, 0.0)
            if x < var.lb - tol or x > var.ub + tol:
                return False
            if var.vtype is not VarType.CONTINUOUS and abs(x - round(x)) > tol:
                return False
        return all(c.satisfied(assignment, tol) for c in self.constraints)

    def objective_value(self, assignment: Mapping[Variable, float]) -> float:
        return self.objective.value(assignment)

    # ------------------------------------------------------------------
    # matrix form (used by the simplex and scipy backends)
    # ------------------------------------------------------------------
    def to_matrices(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Export ``(c, A_ub, b_ub, A_eq, b_eq, lb, ub)`` dense arrays.

        ``>=`` rows are negated into ``<=`` rows.  The objective constant is
        dropped (solvers add it back via :attr:`objective_constant`).
        """
        n = self.num_vars
        c = np.zeros(n)
        for var, coef in self.objective.terms.items():
            c[var.index] = coef

        ub_rows, ub_rhs, eq_rows, eq_rhs = [], [], [], []
        for con in self.constraints:
            row = np.zeros(n)
            for var, coef in con.expr.terms.items():
                row[var.index] = coef
            if con.sense is Sense.LE:
                ub_rows.append(row)
                ub_rhs.append(con.rhs)
            elif con.sense is Sense.GE:
                ub_rows.append(-row)
                ub_rhs.append(-con.rhs)
            else:
                eq_rows.append(row)
                eq_rhs.append(con.rhs)

        a_ub = np.array(ub_rows) if ub_rows else np.zeros((0, n))
        b_ub = np.array(ub_rhs) if ub_rhs else np.zeros(0)
        a_eq = np.array(eq_rows) if eq_rows else np.zeros((0, n))
        b_eq = np.array(eq_rhs) if eq_rhs else np.zeros(0)
        lb = np.array([v.lb for v in self.variables])
        ub = np.array([v.ub for v in self.variables])
        return c, a_ub, b_ub, a_eq, b_eq, lb, ub

    @property
    def objective_constant(self) -> float:
        return self.objective.constant

    def solution_from_vector(self, x: np.ndarray, status: SolveStatus, **info: float) -> Solution:
        values = {var: float(x[var.index]) for var in self.variables}
        return Solution(
            status=status,
            objective=self.objective.value(values),
            values=values,
            info=dict(info),
        )

    def __repr__(self) -> str:
        return (
            f"Model({self.name!r}, vars={self.num_vars}, "
            f"constraints={self.num_constraints})"
        )
