"""Integer linear programming substrate.

The paper solves its multi-query optimization ILPs with Gurobi; this package
replaces it with an in-house stack:

* :mod:`repro.ilp.model` — modeling layer (variables, constraints, objective)
* :mod:`repro.ilp.simplex` — dense two-phase primal simplex (LP relaxations)
* :mod:`repro.ilp.bnb` — exact branch-and-bound on top of the simplex
* :mod:`repro.ilp.greedy` — grouped-selection greedy heuristic (warm starts)
* :mod:`repro.ilp.scipy_backend` — HiGHS via ``scipy.optimize.milp`` for
  cross-validation and large instances
"""

from .bnb import BranchAndBoundSolver
from .greedy import GroupedCandidate, GroupedProblem, GreedySolution, solve_greedy
from .model import (
    Constraint,
    InfeasibleModelError,
    LinExpr,
    Model,
    Sense,
    Solution,
    SolveStatus,
    Variable,
    VarType,
)
from .scipy_backend import ScipyMilpSolver
from .solvers import SolverMethod, solve_model

__all__ = [
    "BranchAndBoundSolver",
    "Constraint",
    "GroupedCandidate",
    "GroupedProblem",
    "GreedySolution",
    "InfeasibleModelError",
    "LinExpr",
    "Model",
    "ScipyMilpSolver",
    "Sense",
    "Solution",
    "SolveStatus",
    "SolverMethod",
    "solve_greedy",
    "solve_model",
    "Variable",
    "VarType",
]
