"""repro — reproduction of *Optimizing Multiple Multi-Way Stream Joins*
(Dossinger & Michel, ICDE 2021) as a pure-Python library.

The documented public surface is the session facade (see ``docs/api.md``)::

    from repro import JoinSession

    session = (
        JoinSession(window=10.0, solver="auto")
        .add_query("q1", "R.a=S.a", "S.b=T.b")
        .add_query("q2", "S.b=T.b", "T.c=U.c")
    )
    session.push("R", {"a": 3}, ts=0.25)
    session.push("S", {"a": 3, "b": 7}, ts=0.5)
    ...
    session.add_query("q3", "T.c=U.c", "U.d=V.d")   # online, mid-stream
    session.remove_query("q1")
    assert session.verify().ok

The underlying layers stay importable for research use (the pre-facade
wiring keeps working — see the migration table in ``docs/api.md``):

* :mod:`repro.core` — the contribution: MIR enumeration, probe-order
  candidates (Algorithm 1), the Equation-(1) cost model, the multi-query
  ILP (Algorithm 2), plan extraction, probe trees, and topology translation.
* :mod:`repro.ilp` — an in-house 0/1 ILP solver stack (simplex + branch and
  bound) replacing Gurobi, with a scipy/HiGHS cross-check backend.
* :mod:`repro.engine` — a discrete-event simulated scale-out stream
  processor replacing Apache Storm, with epoch-based adaptive execution and
  live topology rewiring.
* :mod:`repro.baselines` — binary join pipelines and the FI/SI/FS/SS
  comparison strategies.
* :mod:`repro.streams` — TPC-H-shaped streams, random ILP workloads, and
  push adapters feeding sessions.
* :mod:`repro.service` — the production service surface: an asyncio TCP
  ingress with bounded-queue backpressure and versioned session
  checkpoint/restore (``docs/service.md``).
* :mod:`repro.experiments` — drivers regenerating every figure of the paper.
"""

from .core import (
    Attribute,
    ClusterConfig,
    CrossProductError,
    JoinPredicate,
    MultiQueryOptimizer,
    OptimizerConfig,
    Query,
    SharedPlan,
    StatisticsCatalog,
    StreamRelation,
    Topology,
    build_topology,
)
from .core.adaptive import DecisionRecord
from .engine import (
    AdaptiveRuntime,
    AdaptivityLoop,
    RewirableRuntime,
    RuntimeConfig,
    ShardFailedError,
    ShardedRuntime,
    TopologyRuntime,
    WindowGrowthError,
    input_tuple,
    reference_join,
)
from .session import (
    DuplicateQueryError,
    EngineFailedError,
    JoinSession,
    LateTupleError,
    SessionError,
    UnknownQueryError,
    UnknownRelationError,
    VerificationReport,
)
from .service import JoinServer, ServiceClient, SnapshotError

__version__ = "1.1.0"

#: The documented surface: every name here appears in docs/api.md (enforced
#: by tests/test_public_api.py).  The facade comes first; the layer classes
#: below it remain public for users wiring the pipeline manually.
__all__ = [
    # session facade
    "JoinSession",
    "VerificationReport",
    "SessionError",
    "UnknownRelationError",
    "UnknownQueryError",
    "DuplicateQueryError",
    "LateTupleError",
    "EngineFailedError",
    "CrossProductError",
    # service surface (async ingress + checkpoint/restore)
    "JoinServer",
    "ServiceClient",
    "SnapshotError",
    # query model & statistics
    "Attribute",
    "JoinPredicate",
    "Query",
    "StatisticsCatalog",
    "StreamRelation",
    # manual wiring layer
    "ClusterConfig",
    "MultiQueryOptimizer",
    "OptimizerConfig",
    "SharedPlan",
    "Topology",
    "build_topology",
    # engine layer
    "AdaptiveRuntime",
    "AdaptivityLoop",
    "DecisionRecord",
    "RewirableRuntime",
    "RuntimeConfig",
    "ShardFailedError",
    "ShardedRuntime",
    "TopologyRuntime",
    "WindowGrowthError",
    "input_tuple",
    "reference_join",
    "__version__",
]
