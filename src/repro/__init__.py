"""repro — reproduction of *Optimizing Multiple Multi-Way Stream Joins*
(Dossinger & Michel, ICDE 2021) as a pure-Python library.

The package re-implements the paper's full stack:

* :mod:`repro.core` — the contribution: MIR enumeration, probe-order
  candidates (Algorithm 1), the Equation-(1) cost model, the multi-query
  ILP (Algorithm 2), plan extraction, probe trees, and topology translation.
* :mod:`repro.ilp` — an in-house 0/1 ILP solver stack (simplex + branch and
  bound) replacing Gurobi, with a scipy/HiGHS cross-check backend.
* :mod:`repro.engine` — a discrete-event simulated scale-out stream
  processor replacing Apache Storm, with epoch-based adaptive execution.
* :mod:`repro.baselines` — binary join pipelines and the FI/SI/FS/SS
  comparison strategies.
* :mod:`repro.streams` — TPC-H-shaped streams and random ILP workloads.
* :mod:`repro.experiments` — drivers regenerating every figure of the paper.

Quickstart::

    from repro import Query, StatisticsCatalog, MultiQueryOptimizer

    q1 = Query.of("q1", "R.a=S.a", "S.b=T.b")
    q2 = Query.of("q2", "S.b=T.b", "T.c=U.c")
    catalog = StatisticsCatalog(default_selectivity=0.01)
    for name in "RSTU":
        catalog.with_rate(name, 100.0)
    plan = MultiQueryOptimizer(catalog).optimize([q1, q2]).plan
    print(plan.describe())
"""

from .core import (
    Attribute,
    ClusterConfig,
    JoinPredicate,
    MultiQueryOptimizer,
    OptimizerConfig,
    Query,
    SharedPlan,
    StatisticsCatalog,
    StreamRelation,
    Topology,
    build_topology,
)
from .engine import (
    AdaptiveRuntime,
    RuntimeConfig,
    TopologyRuntime,
    input_tuple,
    reference_join,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptiveRuntime",
    "Attribute",
    "ClusterConfig",
    "JoinPredicate",
    "MultiQueryOptimizer",
    "OptimizerConfig",
    "Query",
    "RuntimeConfig",
    "SharedPlan",
    "StatisticsCatalog",
    "StreamRelation",
    "Topology",
    "TopologyRuntime",
    "build_topology",
    "input_tuple",
    "reference_join",
    "__version__",
]
