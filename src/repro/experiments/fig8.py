"""Adaptive execution experiments: Figures 8a / 8b (Section VII.B).

Both use the four-way linear query R(a), S(a,b), T(b,c), U(c).

* **8a** — equal input rates; the optimizer is initialized "with a little
  higher selectivity for S(b),T(b)" so the probe orders avoid the S⋈T
  join.  At the shift time every S tuple suddenly finds many partners in R
  but none in T (and vice versa): the static plan's intermediate results
  explode, latency climbs, and the worker eventually dies of memory
  overflow; the adaptive plan re-orders probes after about one window and
  recovers.

* **8b** — R arrives orders of magnitude faster than S, T, U.  At the
  shift the S⋈T⋈U intermediate becomes very small; the adaptive optimizer
  introduces an STU store so the R torrent probes one store instead of
  three, and the average latency settles at a lower level.

Outputs are latency-over-time series (like the paper's plots) plus failure
and reconfiguration markers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.adaptive import AdaptiveController
from ..core.catalog import StatisticsCatalog
from ..core.ilp_builder import OptimizerConfig
from ..core.partitioning import ClusterConfig
from ..core.predicates import JoinPredicate
from ..core.query import Query
from ..engine.epochs import AdaptiveRuntime
from ..engine.profiles import CLASH_PROFILE
from ..engine.runtime import RuntimeConfig
from ..streams.generators import StreamSpec, generate_streams

__all__ = ["Fig8Outcome", "run_fig8a", "run_fig8b", "LINEAR_QUERY"]

LINEAR_QUERY = Query.of("q", "R.a=S.a", "S.b=T.b", "T.c=U.c")
_ATTRS = {"R": ["a"], "S": ["a", "b"], "T": ["b", "c"], "U": ["c"]}


@dataclass
class Fig8Outcome:
    """Result of one adaptive-vs-static run."""

    mode: str  # "adaptive" | "static"
    latency_timeline: List[Tuple[float, float]]  # (second, mean latency s)
    failed: bool
    failure_time: Optional[float]
    switches: List[float]
    mir_installed: bool
    mean_latency_before: float
    mean_latency_after: float


def _catalog(rates: Dict[str, float], window: float) -> StatisticsCatalog:
    catalog = StatisticsCatalog(default_selectivity=0.01, default_window=window)
    for name, rate in rates.items():
        catalog.with_rate(name, rate).with_window(name, window)
    # Initialization bias of Sec VII.B: S(b)=T(b) looks slightly costlier,
    # steering the initial plan to <S,R,T,U> / <T,U,R,S>-style orders.
    catalog.with_selectivity(JoinPredicate.of("S.b", "T.b"), 0.05)
    return catalog


def _run(
    rates: Dict[str, float],
    value_gen,
    duration: float,
    window: float,
    epoch_length: float,
    adapt: bool,
    shift_at: float,
    memory_limit: Optional[float],
    parallelism: int,
    seed: int,
    profile_scale: float,
    solver: str = "auto",
) -> Fig8Outcome:
    catalog = _catalog(rates, window)
    config = OptimizerConfig(
        cluster=ClusterConfig(default_parallelism=parallelism)
    )
    controller = AdaptiveController(catalog, [LINEAR_QUERY], config, solver=solver)
    runtime = AdaptiveRuntime(
        controller,
        {name: window for name in rates},
        RuntimeConfig(
            mode="timed",
            profile=CLASH_PROFILE.scaled(profile_scale),
            collect_outputs=False,
            memory_limit_units=memory_limit,
        ),
        epoch_length=epoch_length,
        adapt=adapt,
    )

    specs = [
        StreamSpec(
            relation=name,
            rate=rates[name],
            attributes={a: value_gen(name, a) for a in _ATTRS[name]},
        )
        for name in _ATTRS
    ]
    _, inputs = generate_streams(specs, duration, seed=seed)
    runtime.run(inputs)

    metrics = runtime.metrics
    timeline = metrics.latency_timeline(bucket=1.0)
    before = [lat for t, lat in timeline if t < shift_at]
    after = [lat for t, lat in timeline if t >= shift_at + 2 * window / 3]
    mir_installed = any(
        any("+" in s for s in record.added_stores) for record in runtime.switches
    )
    return Fig8Outcome(
        mode="adaptive" if adapt else "static",
        latency_timeline=timeline,
        failed=metrics.failed,
        failure_time=metrics.last_completion if metrics.failed else None,
        switches=[record.time for record in runtime.switches],
        mir_installed=mir_installed,
        mean_latency_before=(sum(before) / len(before)) if before else 0.0,
        mean_latency_after=(sum(after) / len(after)) if after else 0.0,
    )


def run_fig8a(
    rate: float = 60.0,
    duration: float = 30.0,
    shift_at: float = 15.0,
    window: float = 5.0,
    epoch_length: float = 1.0,
    parallelism: int = 2,
    memory_limit: float = 60_000.0,
    seed: int = 1,
    profile_scale: float = 8.0,
    solver: str = "auto",
) -> Dict[str, Fig8Outcome]:
    """Selectivity flip: static dies of memory overflow, adaptive recovers.

    Before the shift each attribute draws from a domain ≈ 2·rate·window
    (half the tuples find a partner).  After the shift S.a/R.a collapse to
    a tiny domain (every S tuple finds ~100 partners in R) while S.b and
    T.b move to disjoint ranges (no S⋈T matches) — the Section VII.B event.
    """
    rates = {name: rate for name in _ATTRS}
    base = max(2, int(2 * rate * window))
    tiny = max(2, int(rate * window / 100))

    def value_gen(relation: str, attr: str):
        def gen(rng, now):
            shifted = now >= shift_at
            qualified = f"{relation}.{attr}"
            if qualified in ("R.a", "S.a"):
                return rng.randrange(tiny if shifted else base)
            if qualified == "S.b":
                return rng.randrange(base)  # stays low range
            if qualified == "T.b":
                # moves to a disjoint high range: no S.b = T.b matches
                return base + rng.randrange(base) if shifted else rng.randrange(base)
            return rng.randrange(base)

        return gen

    return {
        "adaptive": _run(
            rates, value_gen, duration, window, epoch_length, True,
            shift_at, memory_limit, parallelism, seed, profile_scale, solver,
        ),
        "static": _run(
            rates, value_gen, duration, window, epoch_length, False,
            shift_at, memory_limit, parallelism, seed, profile_scale, solver,
        ),
    }


def run_fig8b(
    fast_rate: float = 300.0,
    slow_rate: float = 4.0,
    duration: float = 30.0,
    shift_at: float = 15.0,
    window: float = 5.0,
    epoch_length: float = 1.0,
    parallelism: int = 2,
    seed: int = 2,
    profile_scale: float = 8.0,
    solver: str = "auto",
) -> Dict[str, Fig8Outcome]:
    """Rate skew: shrinking the S⋈T⋈U intermediate triggers an STU store.

    R floods the system; after the shift T.c/U.c matches become rare, the
    S⋈T⋈U result gets very small, and the adaptive optimizer materializes
    it so R probes one store instead of iterating through three.
    """
    rates = {"R": fast_rate, "S": slow_rate, "T": slow_rate, "U": slow_rate}
    slow_base = max(2, int(2 * slow_rate * window))

    def value_gen(relation: str, attr: str):
        def gen(rng, now):
            qualified = f"{relation}.{attr}"
            if qualified in ("R.a", "S.a"):
                return rng.randrange(slow_base)
            if qualified in ("T.c", "U.c") and now >= shift_at:
                return rng.randrange(20 * slow_base)  # matches become rare
            return rng.randrange(slow_base)

        return gen

    return {
        "adaptive": _run(
            rates, value_gen, duration, window, epoch_length, True,
            shift_at, None, parallelism, seed, profile_scale, solver,
        ),
        "static": _run(
            rates, value_gen, duration, window, epoch_length, False,
            shift_at, None, parallelism, seed, profile_scale, solver,
        ),
    }
