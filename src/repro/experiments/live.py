"""Live-session scenario: online query churn over one shared plan.

Beyond the paper's static figures: a :class:`repro.JoinSession` starts with
a base workload, streams tuples through the shared plan, and then *mutates*
— queries are added and removed while tuples keep flowing.  Reported per
phase: probe cost, produced results, live stored state, and the rewire
metrics that prove migration (preserved vs. backfilled tuples).  Every
phase boundary is verified against the brute-force reference restricted to
each query's active interval, so the table doubles as an end-to-end
correctness check of the online path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.query import Query
from ..session import JoinSession
from ..streams.adapters import replay
from ..streams.generators import StreamSpec, generate_streams, uniform_domain
from .reporting import format_table

__all__ = ["LivePhase", "run_live_session", "main"]

#: chain schema reused by the scenario (same shape as the quickstart)
_ATTRS = {
    "R": ["a"],
    "S": ["a", "b"],
    "T": ["b", "c"],
    "U": ["c", "d"],
    "V": ["d"],
}


@dataclass
class LivePhase:
    """Metrics snapshot after one phase of the churn scenario."""

    phase: str
    queries: int
    pushed: int
    probe_cost: int
    results: int
    stored: int
    preserved: int
    backfilled: int
    verified: bool


def _specs(relations, rate: float, domain: int) -> List[StreamSpec]:
    return [
        StreamSpec(
            relation=rel,
            rate=rate,
            attributes={a: uniform_domain(domain) for a in _ATTRS[rel]},
        )
        for rel in relations
    ]


def run_live_session(
    rate: float = 12.0,
    duration: float = 12.0,
    domain: int = 8,
    window: float = 2.5,
    seed: int = 0,
    disorder_bound: Optional[float] = None,
    verify: bool = True,
) -> List[LivePhase]:
    """Three-phase churn: base workload → +q3 (shared join) → −q1.

    The feed covers all five chain relations for the whole run; pushes are
    filtered to the session's registered relations, which shrink when the
    only query reading a relation expires.
    """
    session = (
        JoinSession(
            window=window,
            solver="scipy",
            disorder_bound=disorder_bound,
            parallelism=2,
        )
        .add_query("q1", "R.a=S.a", "S.b=T.b")
        .add_query("q2", "S.b=T.b", "T.c=U.c")
    )
    streams, feed = generate_streams(
        _specs("RSTUV", rate, domain), duration, seed=seed
    )
    if disorder_bound is not None:
        from ..streams.generators import bounded_delay_feed

        feed = bounded_delay_feed(streams, disorder_bound, seed=seed)

    cut1, cut2 = duration / 3.0, 2.0 * duration / 3.0
    phases: List[LivePhase] = []

    def snapshot(phase: str) -> None:
        session.flush()
        metrics = session.metrics
        phases.append(
            LivePhase(
                phase=phase,
                queries=len(session.queries),
                pushed=session.pushed,
                probe_cost=metrics.tuples_sent,
                results=metrics.results_emitted,
                stored=session.stored_tuples(),
                preserved=metrics.preserved_tuples,
                backfilled=metrics.backfilled_tuples,
                verified=bool(session.verify(raise_on_mismatch=True))
                if verify
                else False,
            )
        )

    def replay_span(lo: float, hi: float) -> None:
        replay(
            session,
            (
                t
                for t in feed
                if lo <= t.trigger_ts < hi and t.trigger in session.relations
            ),
        )

    replay_span(0.0, cut1)
    snapshot("base: q1+q2")

    session.add_query(Query.of("q3", "T.c=U.c", "U.d=V.d"))
    replay_span(cut1, cut2)
    snapshot("+q3 (shares T,U)")

    session.remove_query("q1")
    replay_span(cut2, duration)
    snapshot("-q1 (R released)")
    return phases


def main() -> None:
    rows = run_live_session()
    print("# live session churn: push ingestion + online add/remove")
    print(
        format_table(
            ["phase", "queries", "pushed", "probe cost", "results",
             "stored", "preserved", "backfilled", "exact"],
            [
                (
                    p.phase,
                    p.queries,
                    p.pushed,
                    p.probe_cost,
                    p.results,
                    p.stored,
                    p.preserved,
                    p.backfilled,
                    p.verified,
                )
                for p in rows
            ],
        )
    )
    print()
    print("preserved > 0 proves surviving store state migrated across the")
    print("rewires instead of being rebuilt; every phase is oracle-verified.")


if __name__ == "__main__":
    main()
