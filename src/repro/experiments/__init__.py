"""Experiment drivers regenerating every figure of the paper's evaluation.

* :mod:`repro.experiments.fig7` — multi-query performance grid (7b/7c/7d)
* :mod:`repro.experiments.fig8` — adaptive execution (8a/8b)
* :mod:`repro.experiments.fig9` — ILP study (9a–9f)
* :mod:`repro.experiments.shapes` — workload breadth beyond the paper:
  chain/star/cycle shapes × uniform/Zipf/out-of-order arrival regimes
* :mod:`repro.experiments.live` — session churn: push ingestion with
  online query add/remove over the shared plan, oracle-verified
"""

from .fig7 import Fig7Row, ratio_summary, run_fig7, workload_for
from .fig8 import Fig8Outcome, LINEAR_QUERY, run_fig8a, run_fig8b
from .fig9 import Fig9Point, run_point, sweep_num_queries, sweep_query_sizes
from .live import LivePhase, run_live_session
from .reporting import format_series, format_table
from .shapes import ShapeRow, run_shapes, shape_workload

__all__ = [
    "Fig7Row",
    "Fig8Outcome",
    "Fig9Point",
    "LINEAR_QUERY",
    "LivePhase",
    "format_series",
    "format_table",
    "ratio_summary",
    "run_fig7",
    "run_fig8a",
    "run_fig8b",
    "run_live_session",
    "run_point",
    "run_shapes",
    "ShapeRow",
    "shape_workload",
    "sweep_num_queries",
    "sweep_query_sizes",
    "workload_for",
]
