"""Plain-text reporting helpers for the benchmark harness."""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_series"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Fixed-width table; floats rendered compactly."""
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, points: Iterable[Sequence]) -> str:
    """Compact ``x -> y`` rendering of a measurement series."""
    parts = ", ".join(
        f"{_cell(point[0])}: " + "/".join(_cell(v) for v in point[1:])
        for point in points
    )
    return f"{name}: {parts}"


def _cell(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)
