"""Workload-breadth scenario: throughput across query shapes and arrival regimes.

Runs the optimized engine (logical mode, wall-clock timed) over the three
canonical join-graph topologies — chain, star, and cycle — each under three
arrival regimes:

* ``uniform`` — uniform value domains, timestamp-ordered arrivals,
* ``zipf`` — Zipf-skewed join attributes (heavy hitters concentrate probe
  candidates on few index buckets),
* ``ooo`` — bounded out-of-order arrivals consumed in watermark mode
  (``RuntimeConfig.disorder_bound``).

Each run is verified against the brute-force reference, so the table
doubles as an end-to-end correctness sweep; reported per (shape, regime):
engine throughput (inputs/s of wall clock), probe cost (tuples sent),
result count, and comparisons per probe — the shape-dependent quantity the
optimizer's probe orders are meant to control.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.catalog import StatisticsCatalog
from ..core.ilp_builder import OptimizerConfig
from ..core.optimizer import MultiQueryOptimizer
from ..core.partitioning import ClusterConfig
from ..core.query import Query
from ..core.topology import build_topology
from ..engine.reference import describe_result_diff, reference_join, result_keys
from ..engine.runtime import RuntimeConfig, TopologyRuntime
from ..streams.generators import (
    StreamSpec,
    bounded_delay_feed,
    generate_streams,
    uniform_domain,
    zipf_domain,
)
from .reporting import format_table

__all__ = ["ShapeRow", "shape_workload", "run_shapes", "main"]

SHAPES = ("chain", "star", "cycle")
REGIMES = ("uniform", "zipf", "ooo")


@dataclass
class ShapeRow:
    shape: str
    regime: str
    inputs: int
    results: int
    probe_cost: int
    comparisons_per_probe: float
    throughput: float  # wall-clock inputs/s
    #: True iff the cell was verified equal to the brute-force reference
    #: (a divergence raises instead of reporting False); False = unverified
    exact: bool


def shape_query(shape: str, num_relations: int) -> Query:
    relations = [f"S{i}" for i in range(num_relations)]
    if shape == "chain":
        return Query.chain("q_chain", relations)
    if shape == "star":
        return Query.star("q_star", relations[0], relations[1:])
    if shape == "cycle":
        return Query.cycle("q_cycle", relations)
    raise ValueError(f"unknown shape {shape!r}")


def shape_windows(query: Query, duration: float) -> Dict[str, float]:
    """Per-relation windows: a third of the run, shared by the planner
    (retention, statistics) and the runtime/reference (window checks)."""
    return {rel: duration / 3.0 for rel in query.relations}


def shape_workload(
    shape: str,
    regime: str,
    num_relations: int,
    rate: float,
    duration: float,
    domain: int,
    seed: int,
    zipf_alpha: float = 0.9,
):
    """Query, per-relation streams, input feed, and windows for one cell.

    ``zipf_alpha`` is deliberately moderate: per-hop match probability under
    Zipf is dominated by the heavy hitters (Σ pₖ²), and with α ≥ ~1.1 it
    stops shrinking with the domain size — multi-hop result counts then grow
    geometrically and the brute-force verification drowns.
    """
    query = shape_query(shape, num_relations)
    attrs: Dict[str, List[str]] = {rel: [] for rel in query.relations}
    for pred in sorted(query.predicates):
        for attr in (pred.left, pred.right):
            attrs[attr.relation].append(attr.name)
    gen = (
        zipf_domain(domain, zipf_alpha)
        if regime == "zipf"
        else uniform_domain(domain)
    )
    specs = [
        StreamSpec(
            relation=rel,
            rate=rate,
            attributes={name: gen for name in sorted(set(attrs[rel]))},
        )
        for rel in query.relations
    ]
    streams, inputs = generate_streams(specs, duration, seed=seed)
    return query, streams, inputs, shape_windows(query, duration)


def run_shapes(
    num_relations: int = 4,
    rate: float = 30.0,
    duration: float = 8.0,
    domain: int = 80,
    disorder_bound: float = 1.0,
    parallelism: int = 2,
    seed: int = 0,
    shapes: Sequence[str] = SHAPES,
    regimes: Sequence[str] = REGIMES,
    verify: bool = True,
    zipf_alpha: float = 0.9,
    solver: Optional[str] = None,
    store_backend: str = "python",
) -> List[ShapeRow]:
    """Run the shape × regime grid; ``solver=None`` picks per shape —
    exact scipy/HiGHS for acyclic queries, the greedy planner for cycles
    (a ring's exact MILP explodes combinatorially with its length).
    ``store_backend`` selects the container implementation behind every
    store task (``"python"`` or ``"columnar"``); every cell is still
    verified against the reference, so the grid doubles as an end-to-end
    backend-parity sweep."""
    rows: List[ShapeRow] = []
    for shape in shapes:
        # The topology depends only on the shape: regimes vary the value
        # distribution and feed order, never the query, windows, or
        # statistics — plan once, execute per regime.
        query = shape_query(shape, num_relations)
        windows = shape_windows(query, duration)
        catalog = StatisticsCatalog(
            default_selectivity=1.0 / domain, default_window=max(windows.values())
        )
        for rel in query.relations:
            catalog.with_rate(rel, rate).with_window(rel, windows[rel])
        config = OptimizerConfig(
            cluster=ClusterConfig(default_parallelism=parallelism)
        )
        shape_solver = solver or ("greedy" if query.is_cyclic else "scipy")
        optimizer = MultiQueryOptimizer(catalog, config, solver=shape_solver)
        topology = build_topology(
            optimizer.optimize([query]).plan, catalog, config.cluster
        )
        for regime in regimes:
            query, streams, inputs, windows = shape_workload(
                shape, regime, num_relations, rate, duration, domain, seed,
                zipf_alpha=zipf_alpha,
            )
            if regime == "ooo":
                feed = bounded_delay_feed(streams, disorder_bound, seed=seed + 1)
                runtime_config = RuntimeConfig(
                    mode="logical",
                    disorder_bound=disorder_bound,
                    store_backend=store_backend,
                )
            else:
                feed = inputs
                runtime_config = RuntimeConfig(
                    mode="logical", store_backend=store_backend
                )
            runtime = TopologyRuntime(topology, windows, runtime_config)
            start = time.perf_counter()
            metrics = runtime.run(feed)
            elapsed = time.perf_counter() - start

            if verify:
                expected = result_keys(reference_join(query, streams, windows))
                got = result_keys(runtime.results(query.name))
                if expected != got:
                    raise AssertionError(
                        f"{shape}/{regime}: engine diverged from reference: "
                        + describe_result_diff(expected, got)
                    )
            probes = max(metrics.probes_executed, 1)
            rows.append(
                ShapeRow(
                    shape=shape,
                    regime=regime,
                    inputs=metrics.inputs_ingested,
                    results=metrics.results_emitted,
                    probe_cost=metrics.tuples_sent,
                    comparisons_per_probe=metrics.comparisons / probes,
                    throughput=metrics.inputs_ingested / elapsed
                    if elapsed > 0
                    else 0.0,
                    exact=bool(verify),
                )
            )
    return rows


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    from ..engine.stores import STORE_BACKENDS

    parser.add_argument(
        "--backend",
        choices=sorted(STORE_BACKENDS),
        default="python",
        help="store container implementation behind every task",
    )
    args = parser.parse_args()
    rows = run_shapes(store_backend=args.backend)
    print(
        "# workload breadth: shape x arrival regime "
        f"(logical mode, {args.backend} backend)"
    )
    print(
        format_table(
            ["shape", "regime", "inputs", "results", "probe cost",
             "cmp/probe", "inputs/s", "exact"],
            [
                (
                    r.shape,
                    r.regime,
                    r.inputs,
                    r.results,
                    r.probe_cost,
                    r.comparisons_per_probe,
                    r.throughput,
                    r.exact,
                )
                for r in rows
            ],
        )
    )


if __name__ == "__main__":
    main()
