"""Multi-query performance on TPC-H streams: Figures 7b / 7c / 7d.

For 5 and 10 queries, each of the strategies FI / SI / FS / SS / CMQO is
compiled into a topology and executed on the timed engine over the same
TPC-H-shaped stream.  Reported per strategy:

* throughput — processed input tuples per simulated second (Fig. 7b),
* peak memory — Σ stored tuple-units across all stores (Fig. 7c); the
  independent strategies duplicate every store per query,
* mean end-to-end latency of result computation (Fig. 7d),
* modelled probe cost (the optimizer's objective) for cross-checking.

The paper's headline ratios: CMQO ≈ 2.6× the independent baselines'
throughput, independent execution needs 3.1× (5 queries) / 5.3× (10
queries) the memory of shared execution, and CMQO pays 14–16% latency over
the baselines (locally suboptimal probe orders).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..baselines.strategies import STRATEGIES, build_strategy
from ..core.partitioning import ClusterConfig
from ..core.query import Query
from ..engine.runtime import RuntimeConfig, TopologyRuntime
from ..streams.generators import generate_streams
from ..streams.tpch import (
    five_query_workload,
    ten_query_workload,
    tpch_catalog,
    tpch_specs,
)

__all__ = ["Fig7Row", "run_fig7", "workload_for"]


@dataclass
class Fig7Row:
    strategy: str
    num_queries: int
    throughput: float
    peak_memory_units: float
    mean_latency_ms: float
    probe_cost: float
    results: int
    failed: bool


def workload_for(num_queries: int) -> List[Query]:
    if num_queries == 5:
        return five_query_workload()
    if num_queries == 10:
        return ten_query_workload()
    raise ValueError("the paper evaluates 5- and 10-query workloads")


def run_fig7(
    num_queries: int = 5,
    total_rate: float = 120.0,
    duration: float = 10.0,
    overload_rate: Optional[float] = None,
    overload_duration: float = 3.0,
    window: Optional[float] = None,
    parallelism: int = 3,
    seed: int = 0,
    strategies: Sequence[str] = STRATEGIES,
    solver: str = "scipy",
    profile_scale: float = 400.0,
    num_machines: int = 8,
) -> List[Fig7Row]:
    """Execute every strategy over one shared TPC-H stream sample.

    Following the paper, every strategy is (a) fed "at the maximum
    sustainable rate" — simulated by an *overload* run whose makespan
    reveals each topology's capacity (Fig. 7b) — and (b) run at a moderate
    rate over the *full history* (no window expiry within the run) for
    memory and latency (Figs. 7c/7d).  ``profile_scale`` uniformly slows
    the per-operation service times so saturation happens at simulator
    scale.
    """
    queries = workload_for(num_queries)
    if overload_rate is None:
        # the 10-query workload carries the result-heavy status join (q8),
        # so it saturates the worker pool at a far lower offered rate
        overload_rate = 2600.0 if num_queries == 5 else 1200.0
    if window is None:
        window = 100.0 * duration  # "the full history ... is considered"
    catalog = tpch_catalog(total_rate=total_rate, window=window)
    cluster = ClusterConfig(default_parallelism=parallelism)
    _, inputs = generate_streams(
        tpch_specs(total_rate=total_rate), duration, seed=seed
    )
    _, overload_inputs = generate_streams(
        tpch_specs(total_rate=overload_rate), overload_duration, seed=seed + 1
    )
    windows = {name: window for name in catalog.relations}

    rows: List[Fig7Row] = []
    for strategy in strategies:
        compiled = build_strategy(
            strategy, queries, catalog, cluster, solver=solver
        )
        profile = compiled.profile.scaled(profile_scale)

        # throughput: overload the fixed worker pool, measure the drain rate
        overload_rt = TopologyRuntime(
            compiled.topology,
            windows,
            RuntimeConfig(
                mode="timed", profile=profile, collect_outputs=False,
                num_machines=num_machines,
            ),
        )
        overload_rt.run(overload_inputs)

        # memory + latency: moderate load, full history
        runtime = TopologyRuntime(
            compiled.topology,
            windows,
            RuntimeConfig(
                mode="timed", profile=profile, collect_outputs=False,
                num_machines=num_machines,
            ),
        )
        runtime.run(inputs)
        m = runtime.metrics
        rows.append(
            Fig7Row(
                strategy=strategy,
                num_queries=num_queries,
                throughput=overload_rt.metrics.throughput,
                peak_memory_units=m.peak_stored_units,
                mean_latency_ms=m.mean_latency * 1000.0,
                probe_cost=compiled.probe_cost,
                results=m.results_emitted,
                failed=m.failed or overload_rt.metrics.failed,
            )
        )
    return rows


def ratio_summary(rows: List[Fig7Row]) -> Dict[str, float]:
    """The paper's headline ratios from one strategy grid."""
    by = {row.strategy: row for row in rows}
    out: Dict[str, float] = {}
    if "CMQO" in by and "SI" in by and by["SI"].throughput:
        out["throughput_speedup_cmqo_vs_si"] = (
            by["CMQO"].throughput / by["SI"].throughput
        )
    if "SI" in by and "SS" in by and by["SS"].peak_memory_units:
        out["memory_ratio_si_vs_ss"] = (
            by["SI"].peak_memory_units / by["SS"].peak_memory_units
        )
    if "CMQO" in by and "SS" in by and by["SS"].mean_latency_ms:
        out["latency_overhead_cmqo_vs_ss"] = (
            by["CMQO"].mean_latency_ms / by["SS"].mean_latency_ms - 1.0
        )
    return out
