"""ILP optimization study: Figures 9a–9f (Section VII.C).

Random 3-way (or larger) queries over a universe of relations with equal
arrival rates and ``selectivity = 1/rate``; for each workload size the
driver reports

* average probe cost under individual vs. multi-query optimization
  (Figs. 9a / 9c),
* ILP problem sizes — variables and candidate probe orders (9b / 9d),
* optimization wall time (9e / 9f).

Absolute runtimes differ from the paper (own solver / HiGHS instead of
Gurobi, Python instead of Kotlin); the *shapes* — MQO savings shrinking
with more relations, near-linear runtime in the query count, exponential
growth in query size — are the reproduction targets.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

from ..core.ilp_builder import OptimizerConfig
from ..core.optimizer import MultiQueryOptimizer
from ..core.partitioning import ClusterConfig
from ..streams.workloads import make_environment, random_queries

__all__ = ["Fig9Point", "run_point", "sweep_num_queries", "sweep_query_sizes"]


@dataclass
class Fig9Point:
    """One measurement of the ILP study."""

    num_relations: int
    num_queries: int  # queries drawn (the paper's nQ)
    num_distinct: int  # distinct queries after duplicate elimination
    query_size: int
    individual_cost: float
    mqo_cost: float
    num_variables: int
    num_probe_orders: int
    num_constraints: int
    optimize_seconds: float

    @property
    def savings(self) -> float:
        """Relative probe-cost saving of MQO vs individual optimization."""
        if self.individual_cost == 0:
            return 0.0
        return 1.0 - self.mqo_cost / self.individual_cost

    @property
    def avg_individual_cost(self) -> float:
        return self.individual_cost / self.num_queries

    @property
    def avg_mqo_cost(self) -> float:
        return self.mqo_cost / self.num_queries


def run_point(
    num_relations: int,
    num_queries: int,
    query_size: int = 3,
    seed: int = 0,
    parallelism: int = 4,
    solver: str = "scipy",
    enable_mirs: bool = True,
    mir_max_size: Optional[int] = 2,
    strict_partitioning: bool = False,
    attribute_matching: str = "same_index",
) -> Fig9Point:
    """One (workload, optimization) measurement.

    ``mir_max_size=2`` keeps candidate growth for the larger query sizes in
    the same regime the paper reports (Fig. 9f's 12 s for size-5 queries).
    ``strict_partitioning`` defaults to the paper's printed (relaxed) ILP:
    the strict variant can make the joint optimum *worse* than the sum of
    individually optimal plans, because individual plans may partition a
    shared store inconsistently — see the ablation bench.
    """
    env = make_environment(num_relations)
    queries = random_queries(
        env,
        num_queries,
        query_size=query_size,
        seed=seed,
        attribute_matching=attribute_matching,
        duplicates="drop",
    )
    config = OptimizerConfig(
        enable_mirs=enable_mirs,
        mir_max_size=mir_max_size,
        strict_partitioning=strict_partitioning,
        cluster=ClusterConfig(default_parallelism=parallelism),
    )
    optimizer = MultiQueryOptimizer(
        env.catalog, config, solver=solver, use_greedy_warm_start=(solver == "own")
    )

    start = time.perf_counter()
    result = optimizer.optimize(queries)
    optimize_seconds = time.perf_counter() - start

    individual = optimizer.optimize_individual(queries)

    return Fig9Point(
        num_relations=num_relations,
        num_queries=num_queries,
        num_distinct=len(queries),
        query_size=query_size,
        individual_cost=individual.total_cost,
        mqo_cost=result.plan.objective,
        num_variables=result.ilp.num_variables,
        num_probe_orders=result.ilp.num_probe_orders,
        num_constraints=result.ilp.num_constraints,
        optimize_seconds=optimize_seconds,
    )


def sweep_num_queries(
    num_relations: int,
    nq_values: List[int],
    query_size: int = 3,
    seed: int = 0,
    solver: str = "scipy",
) -> List[Fig9Point]:
    """Figures 9a–9e: vary the number of simultaneous queries."""
    return [
        run_point(
            num_relations,
            nq,
            query_size=query_size,
            seed=seed + i,
            solver=solver,
        )
        for i, nq in enumerate(nq_values)
    ]


def sweep_query_sizes(
    num_relations: int,
    sizes: List[int],
    nq_values: List[int],
    seed: int = 0,
    solver: str = "scipy",
    max_nq_for_size5: int = 10,
) -> List[Fig9Point]:
    """Figure 9f: vary the query size for several workload sizes.

    Size-5 queries enumerate a candidate space that dwarfs the smaller
    sizes (the paper's order-of-magnitude-per-relation observation); to
    keep the sweep tractable they run without MIR stores and are capped at
    ``max_nq_for_size5`` queries — the exponential trend is visible either
    way.
    """
    points = []
    for size in sizes:
        for nq in nq_values:
            if size >= 5 and nq > max_nq_for_size5:
                continue
            points.append(
                run_point(
                    num_relations,
                    nq,
                    query_size=size,
                    seed=seed,
                    solver=solver,
                    enable_mirs=(size < 5),
                )
            )
    return points
