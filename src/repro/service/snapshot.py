"""Versioned on-disk snapshots for session checkpoint/restore.

A snapshot is a single pickle document::

    {"magic": SNAPSHOT_MAGIC, "version": SNAPSHOT_VERSION, "payload": ...}

where ``payload`` is :meth:`JoinSession._snapshot_state`'s dictionary:
construction parameters, the query lifecycle, the verification history,
the adaptivity loop's epoch state, the installed plan/topology, and a
*structural* dump of every store container (numpy arrays serialized as
``np.save`` buffers for the columnar backend, bucket lists for the
python backend) — see docs/service.md, "Snapshot format".

Version policy: the version is bumped whenever the payload layout
changes incompatibly; :func:`read_snapshot` refuses other versions with
a typed :class:`SnapshotError` instead of resuming from a half-understood
state.  Writes are atomic (temp file + ``os.replace``), so a crash
mid-checkpoint never corrupts a previous snapshot at the same path.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from typing import TYPE_CHECKING, Any, Dict, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..session import JoinSession

__all__ = [
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "SnapshotError",
    "write_snapshot",
    "read_snapshot",
    "checkpoint",
    "restore",
]

#: file-format identifier embedded in every snapshot document
SNAPSHOT_MAGIC = "repro-join-session-snapshot"

#: current payload-layout version (see the module docstring's policy)
SNAPSHOT_VERSION = 1

_PathLike = Union[str, "os.PathLike[str]"]


class SnapshotError(RuntimeError):
    """A snapshot file is missing, corrupt, not a snapshot at all, or
    written by an incompatible payload-layout version."""


def write_snapshot(path: _PathLike, payload: Dict[str, Any]) -> None:
    """Atomically write ``payload`` as a versioned snapshot at ``path``."""
    document = {
        "magic": SNAPSHOT_MAGIC,
        "version": SNAPSHOT_VERSION,
        "payload": payload,
    }
    target = os.fspath(path)
    directory = os.path.dirname(target) or "."
    fd, tmp = tempfile.mkstemp(prefix=".snapshot-", dir=directory)
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(document, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def read_snapshot(path: _PathLike) -> Dict[str, Any]:
    """Load and validate a snapshot document, returning its payload."""
    target = os.fspath(path)
    try:
        with open(target, "rb") as handle:
            document = pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError) as exc:
        raise SnapshotError(f"cannot read snapshot {target!r}: {exc}") from exc
    if not isinstance(document, dict) or document.get("magic") != SNAPSHOT_MAGIC:
        raise SnapshotError(f"{target!r} is not a join-session snapshot")
    version = document.get("version")
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot {target!r} has payload version {version!r}; this "
            f"build reads version {SNAPSHOT_VERSION} only (docs/service.md, "
            f"'Version policy')"
        )
    payload = document.get("payload")
    if not isinstance(payload, dict):
        raise SnapshotError(f"snapshot {target!r} carries no payload")
    return payload


def checkpoint(session: "JoinSession", path: _PathLike) -> None:
    """Module-level spelling of :meth:`JoinSession.checkpoint`."""
    session.checkpoint(path)


def restore(path: _PathLike) -> "JoinSession":
    """Module-level spelling of :meth:`JoinSession.restore`."""
    from ..session import JoinSession

    return JoinSession.restore(path)
