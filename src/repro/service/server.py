"""Asyncio ingestion front: bounded-queue ingress with real backpressure.

:class:`JoinServer` turns a :class:`~repro.session.JoinSession` into a
long-running service.  Two ingestion paths feed one **bounded** ingress
queue (``queue_depth`` items):

* a newline-delimited JSON TCP protocol (one frame per line, see
  docs/service.md for the frame catalog), served by ``asyncio``;
* an in-process async API (:meth:`JoinServer.ingest` /
  :meth:`JoinServer.push_batch`) for embedding the service in another
  event loop without sockets.

Backpressure is *real*, not advisory: producers ``await`` the queue's
``put``, so a full queue blocks the TCP reader coroutine — the kernel
socket buffer then fills and TCP flow control throttles the remote end
regardless of client behaviour.  On top of that hard bound the server
emits explicit credit frames: ``{"kind": "pause"}`` when a producer is
about to block and ``{"kind": "resume"}`` once the drain brings the
depth back under half the configured bound.  Well-behaved clients
(:class:`ServiceClient`) gate their sends on these frames; the depth
high-water and every pause land in ``metrics.ingress_queue_high_water``
and ``metrics.backpressure_events``.

A single drain task pops queued items and feeds the session, so all
session access is serialized on the event loop — control operations
(``flush`` / ``results`` / ``stats`` / ``checkpoint`` / ``dead_letters``)
ride the same queue and therefore observe a consistent stream position.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Iterable, List, Mapping, Optional, Set, Tuple, Union

from ..engine.tuples import StreamTuple
from ..session import JoinSession, SessionError

__all__ = ["JoinServer", "ServiceClient"]

#: resume sends once the drain brings the queue depth back under
#: ``queue_depth // _RESUME_FRACTION`` (half the bound)
_RESUME_FRACTION = 2

#: per-line stream limit for NDJSON frames (a ``results`` reply carries
#: the full result list in one line; asyncio's 64 KiB default truncates)
_FRAME_LIMIT = 2**24

_PushItem = Tuple[Any, ...]


class _Connection:
    """Per-client send side; reply frames are single complete lines."""

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.paused = False

    def send(self, frame: Mapping[str, Any]) -> None:
        self.writer.write(json.dumps(frame).encode("utf-8") + b"\n")


class JoinServer:
    """Serve a :class:`JoinSession` behind a bounded async ingress.

    Parameters
    ----------
    session:
        The session to serve; the server takes over ingestion but the
        session object stays fully usable for inspection (``results`` /
        ``verify`` / ``metrics``) from the drain side.
    host / port:
        TCP bind address; ``port=0`` (the default) picks a free port —
        read :attr:`address` after :meth:`start`.
    queue_depth:
        Hard bound on the ingress queue (items).  The observed depth
        never exceeds it; producers block (and are sent ``pause``)
        when it is reached.
    drain_batch:
        How many queued items the drain task processes per scheduling
        slice before yielding back to the event loop.
    """

    def __init__(
        self,
        session: JoinSession,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        queue_depth: int = 256,
        drain_batch: int = 64,
    ) -> None:
        if queue_depth < 1:
            raise ValueError("queue_depth must be at least 1")
        if drain_batch < 1:
            raise ValueError("drain_batch must be at least 1")
        self.session = session
        self.host = host
        self.port = port
        self.queue_depth = int(queue_depth)
        self.drain_batch = int(drain_batch)
        #: total items accepted into the ingress queue
        self.enqueued = 0
        #: total push items delivered to the session (zero loss: equals
        #: ``enqueued`` push items once the queue is drained)
        self.ingested = 0
        #: pause frames broadcast (mirrored into
        #: ``metrics.backpressure_events`` by the drain)
        self.pauses_sent = 0
        #: deepest observed queue depth (≤ ``queue_depth`` always)
        self.queue_high_water = 0
        #: stringified per-item errors with no connection to reply to
        #: (in-process ingestion under ``on_late="raise"``), newest last
        self.errors: List[str] = []
        self._queue: Optional[asyncio.Queue[_PushItem]] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._drain_task: Optional[asyncio.Task[None]] = None
        self._conns: Set[_Connection] = set()
        self._bp_folded = 0
        self._hw_folded = 0
        self._stopping = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "JoinServer":
        """Bind the TCP listener and start the drain task."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._queue = asyncio.Queue(maxsize=self.queue_depth)
        self._drain_task = asyncio.create_task(self._drain_loop())
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port, limit=_FRAME_LIMIT
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (final port known after start)."""
        return (self.host, self.port)

    async def stop(self) -> None:
        """Stop accepting, drain every queued item, release the session."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._queue is not None:
            await self._queue.join()
        if self._drain_task is not None:
            self._drain_task.cancel()
            try:
                await self._drain_task
            except asyncio.CancelledError:
                pass
        for conn in list(self._conns):
            conn.writer.close()
        self._conns.clear()
        self._fold_metrics()
        self.session.close()

    async def __aenter__(self) -> "JoinServer":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # in-process ingestion
    # ------------------------------------------------------------------
    async def ingest(
        self,
        relation: str,
        values: Mapping[str, object],
        ts: float,
        on_late: Optional[str] = None,
    ) -> None:
        """Enqueue one tuple (no socket).  Blocks while the queue is at
        its bound — the in-process face of the same backpressure."""
        await self._enqueue(
            ("push", None, None, relation, dict(values), float(ts), on_late, False)
        )

    async def push_batch(
        self,
        items: Iterable[
            Union[StreamTuple, Tuple[str, Mapping[str, object], float]]
        ],
        on_late: Optional[str] = None,
    ) -> None:
        """Enqueue many tuples in arrival order (adapter-compatible: the
        async counterpart of :meth:`JoinSession.push_batch`)."""
        for item in items:
            if isinstance(item, StreamTuple):
                await self._enqueue(("tuple", None, None, item, on_late, False))
            else:
                relation, values, ts = item
                await self.ingest(relation, values, ts, on_late)

    async def drain(self) -> None:
        """Wait until every currently queued item has been processed."""
        if self._queue is not None:
            await self._queue.join()

    # ------------------------------------------------------------------
    # ingress queue + backpressure
    # ------------------------------------------------------------------
    async def _enqueue(self, item: _PushItem) -> None:
        queue = self._queue
        if queue is None:
            raise RuntimeError("server is not started")
        if queue.full():
            # the producer is about to block: hand out PAUSE credit frames
            # before parking, so well-behaved clients stop sending now
            self._broadcast_pause()
        await queue.put(item)
        self.enqueued += 1
        depth = queue.qsize()
        if depth > self.queue_high_water:
            self.queue_high_water = depth

    def _broadcast_pause(self) -> None:
        sent = False
        for conn in self._conns:
            if not conn.paused:
                conn.paused = True
                conn.send({"kind": "pause"})
                sent = True
        if sent or not self._conns:
            # count one backpressure event per saturation episode; a
            # producer-less saturation (pure in-process load) still counts
            self.pauses_sent += 1

    def _maybe_resume(self) -> None:
        queue = self._queue
        if queue is None or queue.qsize() > self.queue_depth // _RESUME_FRACTION:
            return
        for conn in self._conns:
            if conn.paused:
                conn.paused = False
                conn.send({"kind": "resume"})

    def _fold_metrics(self) -> None:
        """Mirror server-side counters into the engine metrics.

        The session has no metrics object until its first plan exists, so
        the server accumulates locally and folds the deltas through the
        MET001-clean ``on_*`` mutators whenever metrics are available.
        """
        metrics = self.session.metrics
        if metrics is None:
            return
        if self.queue_high_water > self._hw_folded:
            metrics.on_ingress_depth(self.queue_high_water)
            self._hw_folded = self.queue_high_water
        while self._bp_folded < self.pauses_sent:
            metrics.on_backpressure()
            self._bp_folded += 1

    # ------------------------------------------------------------------
    # drain task: the only session caller
    # ------------------------------------------------------------------
    async def _drain_loop(self) -> None:
        queue = self._queue
        assert queue is not None
        while True:
            items = [await queue.get()]
            while len(items) < self.drain_batch:
                try:
                    items.append(queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            for item in items:
                try:
                    self._process_item(item)
                finally:
                    queue.task_done()
            self._fold_metrics()
            self._maybe_resume()
            # yield so readers/writers run between slices even under a
            # saturated queue
            await asyncio.sleep(0)

    def _process_item(self, item: _PushItem) -> None:
        kind = item[0]
        if kind == "push":
            _, conn, fid, relation, values, ts, on_late, ack = item
            try:
                self.session.push(relation, values, ts, on_late)
            except SessionError as exc:
                self._report_error(conn, fid, exc)
            else:
                self.ingested += 1
                if ack and conn is not None and fid is not None:
                    conn.send({"kind": "ok", "id": fid, "pushed": self.session.pushed})
        elif kind == "tuple":
            _, conn, fid, tup, on_late, ack = item
            try:
                self.session.push_batch((tup,), on_late)
            except SessionError as exc:
                self._report_error(conn, fid, exc)
            else:
                self.ingested += 1
                if ack and conn is not None and fid is not None:
                    conn.send({"kind": "ok", "id": fid, "pushed": self.session.pushed})
        elif kind == "control":
            _, conn, fid, op, args = item
            try:
                reply = self._run_control(op, args)
            except Exception as exc:  # noqa: BLE001 - surfaced to the client
                self._report_error(conn, fid, exc)
            else:
                if conn is not None and fid is not None:
                    reply["kind"] = "ok"
                    reply["id"] = fid
                    conn.send(reply)

    def _report_error(
        self, conn: Optional[_Connection], fid: Optional[int], exc: Exception
    ) -> None:
        if conn is not None:
            frame: Dict[str, Any] = {"kind": "error", "error": str(exc)}
            if fid is not None:
                frame["id"] = fid
            conn.send(frame)
        else:
            self.errors.append(str(exc))

    def _run_control(self, op: str, args: Mapping[str, Any]) -> Dict[str, Any]:
        session = self.session
        if op == "flush":
            session.flush()
            return {"pushed": session.pushed}
        if op == "results":
            results = session.results(str(args["query"]))
            return {
                "query": args["query"],
                "count": len(results),
                "results": [
                    {"timestamps": dict(r.timestamps), "values": dict(r.values)}
                    for r in results
                ],
            }
        if op == "stats":
            metrics = session.metrics
            summary = metrics.summary() if metrics is not None else {}
            return {
                "pushed": session.pushed,
                "enqueued": self.enqueued,
                "ingested": self.ingested,
                "queue_high_water": self.queue_high_water,
                "pauses_sent": self.pauses_sent,
                "summary": summary,
            }
        if op == "checkpoint":
            session.checkpoint(str(args["path"]))
            return {"path": args["path"], "pushed": session.pushed}
        if op == "dead_letters":
            letters = session.dead_letters()
            return {
                "count": len(letters),
                "dead_letters": [
                    {
                        "relation": t.trigger,
                        "ts": t.trigger_ts,
                        "values": dict(t.values),
                    }
                    for t in letters
                ],
            }
        raise ValueError(f"unknown op {op!r}")

    # ------------------------------------------------------------------
    # TCP protocol
    # ------------------------------------------------------------------
    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(writer)
        self._conns.add(conn)
        try:
            while not self._stopping:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    frame = json.loads(line)
                except ValueError as exc:
                    conn.send({"kind": "error", "error": f"bad frame: {exc}"})
                    continue
                try:
                    await self._dispatch(conn, frame)
                except (KeyError, TypeError, ValueError) as exc:
                    frame_id = frame.get("id") if isinstance(frame, dict) else None
                    error: Dict[str, Any] = {
                        "kind": "error",
                        "error": f"malformed {frame!r}: {exc}",
                    }
                    if frame_id is not None:
                        error["id"] = frame_id
                    conn.send(error)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            self._conns.discard(conn)
            try:
                await writer.drain()
            except (ConnectionResetError, RuntimeError):
                pass
            writer.close()

    async def _dispatch(self, conn: _Connection, frame: Mapping[str, Any]) -> None:
        op = frame["op"]
        fid = frame.get("id")
        if op == "push":
            await self._enqueue(
                (
                    "push",
                    conn,
                    fid,
                    str(frame["relation"]),
                    dict(frame["values"]),
                    float(frame["ts"]),
                    frame.get("on_late"),
                    fid is not None,
                )
            )
        elif op == "batch":
            items = list(frame["items"])
            for index, entry in enumerate(items):
                relation, values, ts = entry
                # only the final item acks, so one reply per batch frame
                ack = fid is not None and index == len(items) - 1
                await self._enqueue(
                    (
                        "push",
                        conn,
                        fid,
                        str(relation),
                        dict(values),
                        float(ts),
                        frame.get("on_late"),
                        ack,
                    )
                )
            if not items and fid is not None:
                conn.send({"kind": "ok", "id": fid, "pushed": self.session.pushed})
        elif op in ("flush", "results", "stats", "checkpoint", "dead_letters"):
            await self._enqueue(("control", conn, fid, op, dict(frame)))
        else:
            raise ValueError(f"unknown op {op!r}")


class ServiceClient:
    """Async NDJSON client for :class:`JoinServer` with credit gating.

    Sends are gated on the server's ``pause`` / ``resume`` credit frames
    (an :class:`asyncio.Event`); :attr:`pauses_seen` counts how often the
    server paused this client.  Request/reply operations correlate on the
    ``id`` field.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._resume = asyncio.Event()
        self._resume.set()
        self._next_id = 0
        self._waiting: Dict[int, asyncio.Future[Dict[str, Any]]] = {}
        #: pause frames received from the server so far
        self.pauses_seen = 0
        self._recv_task = asyncio.create_task(self._recv_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServiceClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=_FRAME_LIMIT
        )
        return cls(reader, writer)

    async def close(self) -> None:
        self._recv_task.cancel()
        try:
            await self._recv_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # ------------------------------------------------------------------
    async def _recv_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                frame = json.loads(line)
                kind = frame.get("kind")
                if kind == "pause":
                    self.pauses_seen += 1
                    self._resume.clear()
                elif kind == "resume":
                    self._resume.set()
                else:
                    future = self._waiting.pop(frame.get("id"), None)
                    if future is not None and not future.done():
                        future.set_result(frame)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        except ValueError:
            # a reply line exceeded _FRAME_LIMIT: the stream is no longer
            # frame-aligned, so the connection is unusable — fail waiters
            pass
        finally:
            # unblock anyone waiting on a reply from a dead connection
            self._resume.set()
            for future in self._waiting.values():
                if not future.done():
                    future.set_exception(ConnectionError("server closed"))
            self._waiting.clear()

    async def _send(self, frame: Dict[str, Any]) -> None:
        await self._resume.wait()
        self._writer.write(json.dumps(frame).encode("utf-8") + b"\n")
        await self._writer.drain()

    async def _request(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        self._next_id += 1
        fid = self._next_id
        frame["id"] = fid
        loop = asyncio.get_running_loop()
        future: asyncio.Future[Dict[str, Any]] = loop.create_future()
        self._waiting[fid] = future
        await self._send(frame)
        reply = await future
        if reply.get("kind") == "error":
            raise RuntimeError(f"server error: {reply.get('error')}")
        return reply

    # ------------------------------------------------------------------
    async def push(
        self,
        relation: str,
        values: Mapping[str, object],
        ts: float,
        on_late: Optional[str] = None,
    ) -> None:
        """Fire-and-forget push (flow-controlled by credit frames)."""
        frame: Dict[str, Any] = {
            "op": "push",
            "relation": relation,
            "values": dict(values),
            "ts": float(ts),
        }
        if on_late is not None:
            frame["on_late"] = on_late
        await self._send(frame)

    async def push_batch(
        self,
        items: Iterable[
            Union[StreamTuple, Tuple[str, Mapping[str, object], float]]
        ],
        on_late: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Push many tuples in one frame; resolves when the *last* item
        has been drained into the session (an end-to-end ack)."""
        triples: List[Tuple[str, Dict[str, Any], float]] = []
        for item in items:
            if isinstance(item, StreamTuple):
                triples.append(
                    (item.trigger, dict(item.values), float(item.trigger_ts))
                )
            else:
                relation, values, ts = item
                triples.append((str(relation), dict(values), float(ts)))
        frame: Dict[str, Any] = {"op": "batch", "items": triples}
        if on_late is not None:
            frame["on_late"] = on_late
        return await self._request(frame)

    async def flush(self) -> Dict[str, Any]:
        return await self._request({"op": "flush"})

    async def stats(self) -> Dict[str, Any]:
        return await self._request({"op": "stats"})

    async def results(self, query: str) -> Dict[str, Any]:
        return await self._request({"op": "results", "query": query})

    async def checkpoint(self, path: str) -> Dict[str, Any]:
        return await self._request({"op": "checkpoint", "path": path})

    async def dead_letters(self) -> Dict[str, Any]:
        return await self._request({"op": "dead_letters"})
