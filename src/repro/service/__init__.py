"""Production service surface over :class:`~repro.session.JoinSession`.

Three cooperating pieces (docs/service.md):

* :mod:`~repro.service.server` — an asyncio ingestion front
  (:class:`JoinServer`) speaking a newline-delimited JSON TCP protocol
  plus an in-process async API, with a *bounded* ingress queue whose
  depth drives explicit credit-based backpressure (``PAUSE`` / ``RESUME``
  frames); :class:`ServiceClient` is the matching async client.
* :mod:`~repro.service.snapshot` — versioned checkpoint files behind
  :meth:`JoinSession.checkpoint` / :meth:`JoinSession.restore`.
* The session's lateness ladder (``allowed_lateness`` +
  ``on_late="dead_letter"``) lives in :mod:`repro.session`; the server
  simply exposes it over the wire.
"""

from .server import JoinServer, ServiceClient
from .snapshot import (
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    SnapshotError,
    checkpoint,
    read_snapshot,
    restore,
    write_snapshot,
)

__all__ = [
    "JoinServer",
    "ServiceClient",
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "SnapshotError",
    "checkpoint",
    "read_snapshot",
    "restore",
    "write_snapshot",
]
